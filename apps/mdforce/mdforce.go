// Package mdforce implements the irregular kernel of the paper's Table 5:
// the nonbonded force computation phase of a molecular dynamics simulation.
// The computation iterates over atom pairs within a spatial cutoff radius;
// each pair updates the force fields of both atoms from their current
// coordinates. Data access is irregular because sharing is spatial.
//
// As in the paper, communication demand is reduced by locally caching the
// coordinates of remote atoms and combining force increments bound for the
// same remote atom. The hybrid model's three regimes appear exactly as
// Section 4.3.2 describes:
//
//   - both atoms local: the pair computation is speculatively inlined;
//   - partner remote but its coordinates cached: the computation is larger
//     but completes entirely on the stack;
//   - cache miss: communication is required and the stack invocation falls
//     back to the parallel version for latency tolerance. The fetch is a
//     forwarded chain (owner tail-forwards to a cache-fill on the
//     requester, whose ack determines the original continuation).
//
// The paper used a 10503-atom protein input from CEDAR; we substitute a
// synthetic clustered 3-D atom distribution with the same atom count (the
// layout comparison — uniform random versus orthogonal recursive bisection
// — is the experimental variable, and it is preserved).
package mdforce

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/instr"
	"repro/internal/layout"
	"repro/internal/machine"
	"repro/internal/sim"
)

// pairWork is the useful work of one pair-force evaluation.
const pairWork instr.Instr = 60

// cacheWork is the bookkeeping cost of a cache lookup/insert.
const cacheWork instr.Instr = 8

// Pair is one cutoff pair, stored on the node that owns atom I.
type Pair struct {
	I       int // local atom index within the owning chunk
	JChunk  core.Ref
	JIdx    int // index within JChunk
	JGlobal int // global atom id (cache key)
	JLocal  bool
}

// Chunk is the per-node object: its atoms, its pair list, the remote
// coordinate cache, and the combined pending force increments.
type Chunk struct {
	Self    core.Ref
	Pos     [][3]float64
	Force   [][3]float64
	Global  []int // local index -> global atom id
	Pairs   []Pair
	Cache   map[int][3]float64
	Pending map[int]*pendingForce // global id -> combined increment

	flushCache []*pendingForce
}

type pendingForce struct {
	chunk core.Ref
	idx   int
	f     [3]float64
}

// Coord is the coordinator object.
type Coord struct {
	Chunks []core.Ref
}

// Methods bundles the MD-Force program.
type Methods struct {
	Prog *core.Program
	Main *core.Method

	pairForce   *core.Method
	fetchCoords *core.Method
	fillCache   *core.Method
	addForce    *core.Method
	chunkPairs  *core.Method
	chunkFlush  *core.Method
}

// Build registers the MD-Force methods.
func Build() *Methods {
	p := core.NewProgram()
	m := &Methods{Prog: p}

	// fillCache(gid, x, y, z): store fetched coordinates in the requester's
	// cache; the ack reply determines the original fetch continuation.
	m.fillCache = &core.Method{Name: "md.fillCache", NArgs: 4}
	m.fillCache.Body = func(rt *core.RT, fr *core.Frame) core.Status {
		c := fr.Node.State(fr.Self).(*Chunk)
		c.Cache[int(fr.Arg(0).Int())] = [3]float64{fr.Arg(1).Float(), fr.Arg(2).Float(), fr.Arg(3).Float()}
		rt.Work(fr, cacheWork)
		rt.Reply(fr, 0)
		return core.Done
	}
	p.Add(m.fillCache)

	// fetchCoords(idx, gid, requester): the atom owner forwards its reply
	// obligation to a cache fill on the requesting chunk — a single
	// continuation travels owner -> requester, and the fill's ack goes
	// straight back to the suspended pair computation. Forwarding is not a
	// capture: the obligation flows through the Forwards edge, and since
	// fillCache never captures, fetchCoords stays NB.
	m.fetchCoords = &core.Method{Name: "md.fetchCoords", NArgs: 3,
		Forwards: []*core.Method{m.fillCache}}
	m.fetchCoords.Body = func(rt *core.RT, fr *core.Frame) core.Status {
		c := fr.Node.State(fr.Self).(*Chunk)
		idx := int(fr.Arg(0).Int())
		pos := c.Pos[idx]
		return rt.ForwardTail(fr, m.fillCache, fr.Arg(2).Ref(),
			fr.Arg(1), core.FloatW(pos[0]), core.FloatW(pos[1]), core.FloatW(pos[2]))
	}
	p.Add(m.fetchCoords)

	// addForce(idx, fx, fy, fz): apply a combined remote force increment.
	m.addForce = &core.Method{Name: "md.addForce", NArgs: 4}
	m.addForce.Body = func(rt *core.RT, fr *core.Frame) core.Status {
		c := fr.Node.State(fr.Self).(*Chunk)
		idx := int(fr.Arg(0).Int())
		c.Force[idx][0] += fr.Arg(1).Float()
		c.Force[idx][1] += fr.Arg(2).Float()
		c.Force[idx][2] += fr.Arg(3).Float()
		rt.Work(fr, cacheWork)
		rt.Reply(fr, 0)
		return core.Done
	}
	p.Add(m.addForce)

	// pairForce(pairIdx): evaluate one cutoff pair. Future slot 0 receives
	// the fetch ack on a cache miss.
	m.pairForce = &core.Method{Name: "md.pairForce", NArgs: 1, NFutures: 1,
		MayBlockLocal: true, Calls: []*core.Method{m.fetchCoords}}
	m.pairForce.Body = func(rt *core.RT, fr *core.Frame) core.Status {
		c := fr.Node.State(fr.Self).(*Chunk)
		pr := &c.Pairs[fr.Arg(0).Int()]
		switch fr.PC {
		case 0:
			if pr.JLocal {
				// Both atoms local: small computation, speculatively inlined.
				f := force(c.Pos[pr.I], c.Pos[pr.JIdx])
				for d := 0; d < 3; d++ {
					c.Force[pr.I][d] += f[d]
					c.Force[pr.JIdx][d] -= f[d]
				}
				rt.Work(fr, pairWork)
				rt.Reply(fr, 0)
				return core.Done
			}
			rt.Work(fr, cacheWork)
			if _, ok := c.Cache[pr.JGlobal]; ok {
				fr.PC = 2
				return m.pairForce.Body(rt, fr)
			}
			// Cache miss: fetch the remote coordinates.
			st := rt.Invoke(fr, m.fetchCoords, pr.JChunk, 0,
				core.IntW(int64(pr.JIdx)), core.IntW(int64(pr.JGlobal)), core.RefW(c.Self))
			fr.PC = 1
			if st == core.NeedUnwind {
				return rt.Unwind(fr)
			}
			fallthrough
		case 1:
			if !rt.TouchAll(fr, core.Mask(0)) {
				return core.Unwound
			}
			fr.PC = 2
			fallthrough
		case 2:
			// Remote partner with cached coordinates: larger computation,
			// completes on the stack.
			jp := c.Cache[pr.JGlobal]
			f := force(c.Pos[pr.I], jp)
			for d := 0; d < 3; d++ {
				c.Force[pr.I][d] += f[d]
			}
			pf := c.Pending[pr.JGlobal]
			if pf == nil {
				pf = &pendingForce{chunk: pr.JChunk, idx: pr.JIdx}
				c.Pending[pr.JGlobal] = pf
			}
			for d := 0; d < 3; d++ {
				pf.f[d] -= f[d]
			}
			rt.Work(fr, pairWork+cacheWork)
			rt.Reply(fr, 0)
			return core.Done
		}
		panic("md.pairForce: bad pc")
	}
	p.Add(m.pairForce)

	// chunkPairs: evaluate every owned pair, join.
	m.chunkPairs = &core.Method{Name: "md.chunkPairs", NLocals: 1,
		MayBlockLocal: true, Calls: []*core.Method{m.pairForce}}
	m.chunkPairs.Body = func(rt *core.RT, fr *core.Frame) core.Status {
		c := fr.Node.State(fr.Self).(*Chunk)
		switch fr.PC {
		case 0:
			fr.PC = 1
			fallthrough
		case 1:
			for {
				i := int(fr.Local(0).Int())
				if i >= len(c.Pairs) {
					break
				}
				fr.SetLocal(0, core.IntW(int64(i+1)))
				st := rt.Invoke(fr, m.pairForce, fr.Self, core.JoinDiscard, core.IntW(int64(i)))
				if st == core.NeedUnwind {
					return rt.Unwind(fr)
				}
			}
			fr.PC = 2
			fallthrough
		case 2:
			if !rt.TouchJoin(fr) {
				return core.Unwound
			}
			rt.Reply(fr, 0)
			return core.Done
		}
		panic("md.chunkPairs: bad pc")
	}
	p.Add(m.chunkPairs)

	// chunkFlush: deliver the combined force increments, one message per
	// remote atom touched, join the acks.
	m.chunkFlush = &core.Method{Name: "md.chunkFlush", NLocals: 1,
		MayBlockLocal: true, Calls: []*core.Method{m.addForce}}
	m.chunkFlush.Body = func(rt *core.RT, fr *core.Frame) core.Status {
		c := fr.Node.State(fr.Self).(*Chunk)
		switch fr.PC {
		case 0:
			fr.PC = 1
			fallthrough
		case 1:
			for {
				i := int(fr.Local(0).Int())
				if i >= len(c.flushList()) {
					break
				}
				fr.SetLocal(0, core.IntW(int64(i+1)))
				pf := c.flushList()[i]
				st := rt.Invoke(fr, m.addForce, pf.chunk, core.JoinDiscard,
					core.IntW(int64(pf.idx)),
					core.FloatW(pf.f[0]), core.FloatW(pf.f[1]), core.FloatW(pf.f[2]))
				if st == core.NeedUnwind {
					return rt.Unwind(fr)
				}
			}
			fr.PC = 2
			fallthrough
		case 2:
			if !rt.TouchJoin(fr) {
				return core.Unwound
			}
			rt.Reply(fr, 0)
			return core.Done
		}
		panic("md.chunkFlush: bad pc")
	}
	p.Add(m.chunkFlush)

	// main: pair phase on every chunk, join; then flush phase, join.
	main := &core.Method{Name: "md.main", NLocals: 2,
		MayBlockLocal: true, Calls: []*core.Method{m.chunkPairs, m.chunkFlush}}
	main.Body = func(rt *core.RT, fr *core.Frame) core.Status {
		c := fr.Node.State(fr.Self).(*Coord)
		switch fr.PC {
		case 0:
			fr.PC = 1
			fallthrough
		case 1:
			for {
				if fr.Local(1).Int() >= 2 {
					rt.Reply(fr, 0)
					return core.Done
				}
				meth := m.chunkPairs
				if fr.Local(1).Int() == 1 {
					meth = m.chunkFlush
				}
				for {
					i := int(fr.Local(0).Int())
					if i >= len(c.Chunks) {
						break
					}
					fr.SetLocal(0, core.IntW(int64(i+1)))
					st := rt.Invoke(fr, meth, c.Chunks[i], core.JoinDiscard)
					if st == core.NeedUnwind {
						return rt.Unwind(fr)
					}
				}
				if !rt.TouchJoin(fr) {
					return core.Unwound
				}
				fr.SetLocal(0, 0)
				fr.SetLocal(1, core.IntW(fr.Local(1).Int()+1))
			}
		}
		panic("md.main: bad pc")
	}
	p.Add(main)
	m.Main = main
	return m
}

// flushList returns the pending increments in deterministic (global id)
// order, built lazily once per flush.
func (c *Chunk) flushList() []*pendingForce {
	if c.flushCache != nil {
		return c.flushCache
	}
	keys := make([]int, 0, len(c.Pending))
	for k := range c.Pending {
		keys = append(keys, k)
	}
	sortInts(keys)
	out := make([]*pendingForce, len(keys))
	for i, k := range keys {
		out[i] = c.Pending[k]
	}
	c.flushCache = out
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// force is the simple bounded pair force used for verification: a smooth
// repulsive kernel along the separation vector.
func force(a, b [3]float64) [3]float64 {
	dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	r2 := dx*dx + dy*dy + dz*dz
	s := 1.0 / (r2 + 0.25)
	return [3]float64{s * dx, s * dy, s * dz}
}

// Params configures one MD-Force run.
type Params struct {
	Atoms    int
	Clusters int
	Box      float64
	Cutoff   float64
	Nodes    int
	// Scatter is the fraction of atoms placed uniformly in the box rather
	// than inside a cluster — solvent-like stragglers whose pairs cross
	// node boundaries even under the spatial layout.
	Scatter float64
	Spatial bool // true: ORB layout; false: uniform random
	Seed    int64
}

// DefaultParams matches the paper's problem: 10503 atoms, one iteration, 64
// nodes, with a cutoff giving a protein-like pair density.
func DefaultParams() Params {
	return Params{Atoms: 10503, Clusters: 128, Box: 96, Cutoff: 2.4, Nodes: 64, Scatter: 0.1, Seed: 1995}
}

// Instance is a generated problem: positions and the cutoff pair list.
type Instance struct {
	Params  Params
	Pos     []layout.Point3
	Cluster []int // atom -> cluster id
	Centers []layout.Point3
	Pairs   [][2]int // global index pairs, i < j
}

// Generate builds a clustered synthetic atom set and its cutoff pair list
// (via spatial binning).
func Generate(pr Params) *Instance {
	rng := rand.New(rand.NewSource(pr.Seed))
	pos := make([]layout.Point3, pr.Atoms)
	// Cluster centers on a jittered lattice, then Gaussian scatter around
	// them: protein-like clumping (so ORB has locality to find) with
	// near-uniform cluster spacing (so the per-node pair load is balanced,
	// as the paper's production pair lists were).
	side := 1
	for side*side*side < pr.Clusters {
		side++
	}
	cell := pr.Box / float64(side)
	centers := make([]layout.Point3, pr.Clusters)
	for i := range centers {
		cx, cy, cz := i%side, (i/side)%side, i/(side*side)
		centers[i] = layout.Point3{
			X: (float64(cx)+0.5)*cell + rng.NormFloat64()*cell*0.05,
			Y: (float64(cy)+0.5)*cell + rng.NormFloat64()*cell*0.05,
			Z: (float64(cz)+0.5)*cell + rng.NormFloat64()*cell*0.05,
		}
	}
	cluster := make([]int, pr.Atoms)
	for i := range pos {
		cluster[i] = i % pr.Clusters
		if rng.Float64() < pr.Scatter {
			// A solvent-like straggler: uniform position, but ownership
			// still follows its nominal cluster.
			pos[i] = layout.Point3{
				X: rng.Float64() * pr.Box,
				Y: rng.Float64() * pr.Box,
				Z: rng.Float64() * pr.Box,
			}
			continue
		}
		c := centers[cluster[i]]
		pos[i] = layout.Point3{
			X: clamp(c.X+rng.NormFloat64()*1.3, pr.Box),
			Y: clamp(c.Y+rng.NormFloat64()*1.3, pr.Box),
			Z: clamp(c.Z+rng.NormFloat64()*1.3, pr.Box),
		}
	}
	return &Instance{
		Params:  pr,
		Pos:     pos,
		Cluster: cluster,
		Centers: centers,
		Pairs:   cutoffPairs(pos, pr.Box, pr.Cutoff),
	}
}

func clamp(v, box float64) float64 {
	if v < 0 {
		return 0
	}
	if v > box {
		return box
	}
	return v
}

// cutoffPairs builds the pair list with cell binning: O(atoms * density).
func cutoffPairs(pos []layout.Point3, box, cutoff float64) [][2]int {
	cells := int(box / cutoff)
	if cells < 1 {
		cells = 1
	}
	cw := box / float64(cells)
	bin := func(p layout.Point3) (int, int, int) {
		cx, cy, cz := int(p.X/cw), int(p.Y/cw), int(p.Z/cw)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		if cz >= cells {
			cz = cells - 1
		}
		return cx, cy, cz
	}
	grid := make(map[[3]int][]int)
	for i, p := range pos {
		cx, cy, cz := bin(p)
		grid[[3]int{cx, cy, cz}] = append(grid[[3]int{cx, cy, cz}], i)
	}
	cut2 := cutoff * cutoff
	var pairs [][2]int
	for i, p := range pos {
		cx, cy, cz := bin(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					for _, j := range grid[[3]int{cx + dx, cy + dy, cz + dz}] {
						if j <= i {
							continue
						}
						q := pos[j]
						ddx, ddy, ddz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
						if ddx*ddx+ddy*ddy+ddz*ddz <= cut2 {
							pairs = append(pairs, [2]int{i, j})
						}
					}
				}
			}
		}
	}
	return pairs
}

// Result is one MD-Force execution's measurements.
type Result struct {
	Seconds       float64
	LocalFraction float64
	Stats         core.NodeStats
	Counters      instr.Counters
	Messages      int64
	Forces        [][3]float64 // by global atom id
	PairCount     int
}

// Assignment returns the atom placement inst would use under its Spatial
// flag: either ORB over the cluster centers (whole clusters follow their
// center's node, so spatially proximate atoms are grouped without slicing
// tight clusters apart) or uniform random.
func Assignment(inst *Instance, spatial bool) []int {
	pr := inst.Params
	if spatial {
		centerAssign := layout.ORB(inst.Centers, pr.Nodes)
		assign := make([]int, len(inst.Pos))
		for i, c := range inst.Cluster {
			assign[i] = centerAssign[c]
		}
		return assign
	}
	return layout.Random(len(inst.Pos), pr.Nodes, pr.Seed+7)
}

// Run executes the kernel over inst under cfg on the given machine, using
// the layout selected by inst's Spatial flag.
func Run(mdl *machine.Model, cfg core.Config, inst *Instance) Result {
	return RunWithAssign(mdl, cfg, inst, Assignment(inst, inst.Params.Spatial))
}

// RunWithAssign executes the kernel with an explicit atom placement — the
// hook automatic layout selection (layout.AutoSelect) probes through.
func RunWithAssign(mdl *machine.Model, cfg core.Config, inst *Instance, assign []int) Result {
	m := Build()
	if err := m.Prog.Resolve(cfg.Interfaces); err != nil {
		panic(err)
	}
	pr := inst.Params
	eng := sim.NewEngine(pr.Nodes)
	rt := core.NewRT(eng, mdl, m.Prog, cfg)

	chunks := make([]*Chunk, pr.Nodes)
	chunkRefs := make([]core.Ref, pr.Nodes)
	for n := range chunks {
		chunks[n] = &Chunk{Cache: map[int][3]float64{}, Pending: map[int]*pendingForce{}}
		chunkRefs[n] = rt.Node(n).NewObject(chunks[n])
		chunks[n].Self = chunkRefs[n]
	}
	localIdx := make([]int, len(inst.Pos))
	for gid, p := range inst.Pos {
		c := chunks[assign[gid]]
		localIdx[gid] = len(c.Pos)
		c.Pos = append(c.Pos, [3]float64{p.X, p.Y, p.Z})
		c.Force = append(c.Force, [3]float64{})
		c.Global = append(c.Global, gid)
	}
	for _, pair := range inst.Pairs {
		i, j := pair[0], pair[1]
		owner := assign[i]
		c := chunks[owner]
		c.Pairs = append(c.Pairs, Pair{
			I:       localIdx[i],
			JChunk:  chunkRefs[assign[j]],
			JIdx:    localIdx[j],
			JGlobal: j,
			JLocal:  assign[j] == owner,
		})
	}
	coord := &Coord{Chunks: chunkRefs}
	coordRef := rt.Node(0).NewObject(coord)

	var res core.Result
	rt.StartOn(0, m.Main, coordRef, &res)
	rt.Run()
	if !res.Done {
		panic("mdforce: did not complete")
	}
	if err := rt.CheckQuiescence(); err != nil {
		panic(err)
	}

	forces := make([][3]float64, len(inst.Pos))
	for _, c := range chunks {
		for li, gid := range c.Global {
			forces[gid] = c.Force[li]
		}
	}
	st := rt.TotalStats()
	return Result{
		Seconds:       mdl.Seconds(eng.MaxClock()),
		Counters:      eng.TotalCounters(),
		LocalFraction: float64(st.LocalInvokes) / float64(st.LocalInvokes+st.RemoteInvokes),
		Stats:         st,
		Messages:      eng.TotalMessages(),
		Forces:        forces,
		PairCount:     len(inst.Pairs),
	}
}

// Native computes the same forces in plain Go (pair order = instance
// order). Summation order differs from the distributed execution, so
// comparisons use a small tolerance.
func Native(inst *Instance) [][3]float64 {
	forces := make([][3]float64, len(inst.Pos))
	pos := make([][3]float64, len(inst.Pos))
	for i, p := range inst.Pos {
		pos[i] = [3]float64{p.X, p.Y, p.Z}
	}
	for _, pr := range inst.Pairs {
		f := force(pos[pr[0]], pos[pr[1]])
		for d := 0; d < 3; d++ {
			forces[pr[0]][d] += f[d]
			forces[pr[1]][d] -= f[d]
		}
	}
	return forces
}

// MaxRelError returns the maximum relative force error between two force
// sets (with an absolute floor to avoid dividing by tiny magnitudes).
func MaxRelError(a, b [][3]float64) float64 {
	var worst float64
	for i := range a {
		for d := 0; d < 3; d++ {
			diff := math.Abs(a[i][d] - b[i][d])
			mag := math.Max(math.Abs(a[i][d]), math.Abs(b[i][d]))
			rel := diff / math.Max(mag, 1e-6)
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst
}

package lang

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[p.pos+1] }

func (p *parser) take() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, *Error) {
	t := p.cur()
	if t.kind != k {
		return t, errf(t.line, t.col, "expected %v, found %v", k, t.kind)
	}
	return p.take(), nil
}

// parseProgram parses a whole source file.
func parseProgram(src string) ([]*methodDecl, *Error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var methods []*methodDecl
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokClass {
			c, err := p.parseClass()
			if err != nil {
				return nil, err
			}
			for _, m := range c.methods {
				m.className = c.name
				m.name = c.name + "." + m.name
				m.fields = c.fields
				methods = append(methods, m)
			}
			continue
		}
		m, err := p.parseMethod()
		if err != nil {
			return nil, err
		}
		methods = append(methods, m)
	}
	if len(methods) == 0 {
		return nil, errf(1, 1, "empty program: no methods")
	}
	return methods, nil
}

// parseClass parses: class Name { field a; ... method m() {...} ... }
func (p *parser) parseClass() (*classDecl, *Error) {
	if _, err := p.expect(tokClass); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	c := &classDecl{name: name.text}
	for p.cur().kind != tokRBrace {
		switch p.cur().kind {
		case tokField:
			p.take()
			fn, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			c.fields = append(c.fields, fn.text)
		case tokMethod, tokLocked:
			m, err := p.parseMethod()
			if err != nil {
				return nil, err
			}
			c.methods = append(c.methods, m)
		default:
			t := p.cur()
			return nil, errf(t.line, t.col, "expected 'field' or 'method' in class body, found %v", t.kind)
		}
	}
	p.take() // }
	return c, nil
}

func (p *parser) parseMethod() (*methodDecl, *Error) {
	locked := false
	if p.cur().kind == tokLocked {
		p.take()
		locked = true
	}
	kw, err := p.expect(tokMethod)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	m := &methodDecl{name: name.text, locked: locked, line: kw.line, col: kw.col}
	if p.cur().kind != tokRParen {
		for {
			pn, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			m.params = append(m.params, pn.text)
			if p.cur().kind != tokComma {
				break
			}
			p.take()
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	body, perr := p.parseBlock()
	if perr != nil {
		return nil, perr
	}
	m.body = body
	return m, nil
}

func (p *parser) parseBlock() ([]stmt, *Error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var out []stmt
	for p.cur().kind != tokRBrace {
		if p.cur().kind == tokEOF {
			t := p.cur()
			return nil, errf(t.line, t.col, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.take() // }
	return out, nil
}

func (p *parser) parseStmt() (stmt, *Error) {
	t := p.cur()
	switch t.kind {
	case tokReturn:
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &returnStmt{pos: pos{t.line, t.col}, value: e}, nil

	case tokForward:
		p.take()
		calleeName, err := p.parseCalleeName()
		if err != nil {
			return nil, err
		}
		args, perr := p.parseArgs()
		if perr != nil {
			return nil, perr
		}
		if _, err := p.expect(tokOn); err != nil {
			return nil, err
		}
		target, perr := p.parseExpr()
		if perr != nil {
			return nil, perr
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &forwardStmt{pos: pos{t.line, t.col}, callee: calleeName, args: args, target: target}, nil

	case tokTouch:
		p.take()
		var names []string
		for {
			n, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			names = append(names, n.text)
			if p.cur().kind != tokComma {
				break
			}
			p.take()
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &touchStmt{pos: pos{t.line, t.col}, names: names}, nil

	case tokWork:
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &workStmt{pos: pos{t.line, t.col}, amount: e}, nil

	case tokIf:
		p.take()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []stmt
		if p.cur().kind == tokElse {
			p.take()
			if p.cur().kind == tokIf {
				s, err := p.parseStmt() // else if
				if err != nil {
					return nil, err
				}
				els = []stmt{s}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &ifStmt{pos: pos{t.line, t.col}, cond: cond, then: then, els: els}, nil

	case tokWhile:
		p.take()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &whileStmt{pos: pos{t.line, t.col}, cond: cond, body: body}, nil

	case tokState:
		// state[idx] = expr;
		p.take()
		if _, err := p.expect(tokLBracket); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &stateAssign{pos: pos{t.line, t.col}, idx: idx, rhs: rhs}, nil

	case tokIdent:
		// assignment, spawn or newobj
		name := p.take()
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		if p.cur().kind == tokNew {
			p.take()
			cls, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			return &newClassStmt{pos: pos{name.line, name.col}, name: name.text, class: cls.text}, nil
		}
		if p.cur().kind == tokNewObj {
			p.take()
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			size, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			return &newObjStmt{pos: pos{name.line, name.col}, name: name.text, size: size}, nil
		}
		if p.cur().kind == tokSpawn {
			p.take()
			calleeName, err := p.parseCalleeName()
			if err != nil {
				return nil, err
			}
			args, perr := p.parseArgs()
			if perr != nil {
				return nil, perr
			}
			if _, err := p.expect(tokOn); err != nil {
				return nil, err
			}
			target, perr := p.parseExpr()
			if perr != nil {
				return nil, perr
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, err
			}
			return &spawnStmt{pos: pos{name.line, name.col}, name: name.text,
				callee: calleeName, args: args, target: target}, nil
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &assignStmt{pos: pos{name.line, name.col}, name: name.text, rhs: rhs}, nil
	}
	return nil, errf(t.line, t.col, "unexpected %v at start of statement", t.kind)
}

// parseCalleeName parses IDENT or Class '.' method.
func (p *parser) parseCalleeName() (string, *Error) {
	id, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	if p.cur().kind == tokDot {
		p.take()
		m, err := p.expect(tokIdent)
		if err != nil {
			return "", err
		}
		return id.text + "." + m.text, nil
	}
	return id.text, nil
}

func (p *parser) parseArgs() ([]expr, *Error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var args []expr
	if p.cur().kind != tokRParen {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if p.cur().kind != tokComma {
				break
			}
			p.take()
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

// Expression parsing: precedence climbing.
// || < && < comparisons < additive < multiplicative < unary < primary.

func (p *parser) parseExpr() (expr, *Error) { return p.parseOr() }

func (p *parser) parseOr() (expr, *Error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOrOr {
		op := p.take()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &binExpr{pos: pos{op.line, op.col}, op: tokOrOr, x: x, y: y}
	}
	return x, nil
}

func (p *parser) parseAnd() (expr, *Error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokAndAnd {
		op := p.take()
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &binExpr{pos: pos{op.line, op.col}, op: tokAndAnd, x: x, y: y}
	}
	return x, nil
}

func (p *parser) parseCmp() (expr, *Error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().kind
		if k != tokLT && k != tokLE && k != tokGT && k != tokGE && k != tokEQ && k != tokNE {
			return x, nil
		}
		op := p.take()
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		x = &binExpr{pos: pos{op.line, op.col}, op: k, x: x, y: y}
	}
}

func (p *parser) parseAdd() (expr, *Error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPlus || p.cur().kind == tokMinus ||
		p.cur().kind == tokPipe || p.cur().kind == tokCaret {
		op := p.take()
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &binExpr{pos: pos{op.line, op.col}, op: op.kind, x: x, y: y}
	}
	return x, nil
}

func (p *parser) parseMul() (expr, *Error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokStar || p.cur().kind == tokSlash || p.cur().kind == tokPercent ||
		p.cur().kind == tokAmp || p.cur().kind == tokShl || p.cur().kind == tokShr {
		op := p.take()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &binExpr{pos: pos{op.line, op.col}, op: op.kind, x: x, y: y}
	}
	return x, nil
}

func (p *parser) parseUnary() (expr, *Error) {
	t := p.cur()
	if t.kind == tokMinus || t.kind == tokBang {
		p.take()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{pos: pos{t.line, t.col}, op: t.kind, x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, *Error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.take()
		return &intLit{pos: pos{t.line, t.col}, v: t.val}, nil
	case tokIdent:
		p.take()
		return &varRef{pos: pos{t.line, t.col}, name: t.text}, nil
	case tokSelf:
		p.take()
		return &selfRef{pos: pos{t.line, t.col}}, nil
	case tokState:
		p.take()
		if _, err := p.expect(tokLBracket); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return &stateRef{pos: pos{t.line, t.col}, idx: idx}, nil
	case tokLParen:
		p.take()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.line, t.col, "unexpected %v in expression", t.kind)
}

// Package lint implements the schema-declaration verifier: static analysis
// passes that check the hand-declared analysis inputs of core.Method values
// (MayBlockLocal, Captures, Calls, Forwards — the facts the paper's global
// flow analysis would derive, supplied by hand in every Go-authored kernel)
// against what the method bodies actually do.
//
// The API mirrors the golang.org/x/tools/go/analysis shape (Analyzer, Pass,
// Diagnostic) so the passes read like standard vet checkers, but it is built
// purely on the standard library: the container this repo builds in has no
// module proxy, so x/tools cannot be fetched, and the passes work from
// syntax alone (no go/types — the stdlib importer cannot resolve module
// paths offline either). The analyses are therefore deliberately
// conservative: anything they cannot resolve syntactically (a method
// variable flowing through an unresolvable call, an rt handle escaping into
// a helper) suppresses the affected checks rather than guessing — the
// runtime sanitizer (core Config.CheckDecls) is the dynamic backstop for
// exactly those blind spots.
//
// Two diagnostic classes are reported:
//
//   - unsound: the body does something its declaration says it cannot
//     (suspends without MayBlockLocal/Locks, captures without Captures,
//     invokes or forwards to a method missing from Calls/Forwards). The
//     schemas selected from such declarations are wrong in the dangerous
//     direction: a blocking method runs under the Non-blocking schema with
//     no fallback armed.
//
//   - pessimizing: the declaration claims something the body provably never
//     does (MayBlockLocal with no touch anywhere, Captures with no
//     CaptureCont, a declared call-graph edge never used). Such
//     declarations silently forfeit the NB fast path the performance story
//     depends on.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one package's syntax to an Analyzer and collects its
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Dir      string
	Report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos in the given category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // "unsound" or "pessimizing"
	Message  string
}

// Finding is a resolved diagnostic as returned by Run: the position has
// been resolved against the file set and the originating analyzer recorded.
type Finding struct {
	Analyzer string
	Position token.Position
	Category string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", f.Position, f.Analyzer, f.Category, f.Message)
}

// ExpandPatterns resolves package patterns to directories containing Go
// source files. A trailing "/..." walks the tree; other patterns name one
// directory. testdata directories and dot-directories are skipped, matching
// the go tool's convention.
func ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) error {
		if seen[dir] {
			return nil
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				seen[dir] = true
				dirs = append(dirs, dir)
				return nil
			}
		}
		return nil
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Clean(rest)
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return add(path)
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if err := add(filepath.Clean(pat)); err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadDir parses every non-test Go file of one directory.
func loadDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Run applies every analyzer to every package named by patterns and returns
// the findings sorted by position.
func Run(analyzers []*Analyzer, patterns []string) ([]Finding, error) {
	dirs, err := ExpandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var findings []Finding
	for _, dir := range dirs {
		files, err := loadDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    files,
				Dir:      dir,
				Report: func(d Diagnostic) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Position: fset.Position(d.Pos),
						Category: d.Category,
						Message:  d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", dir, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}

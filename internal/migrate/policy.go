// Package migrate provides migration policies for the core runtime's
// dynamic object migration protocol (internal/core/migrate.go).
//
// The paper lists "dynamic data migration" as future work (Section 6); this
// package supplies the decision layer the protocol needs: when should an
// object leave its node, and where should it go. Policies see the
// per-object access counters the runtime maintains — co-resident versus
// remote hit counts and a Misra-Gries sketch of the heaviest remote
// requester nodes — so their state is O(1) per object, and the decision
// they return is applied by the runtime at the object's next
// activation-free instant.
//
// Both active policies use the same three-part test:
//
//   - evidence: the heaviest remote requester must have sent at least
//     MinTop invocations this residence (the sketch count is a lower
//     bound), so decisions rest on real traffic, not noise;
//   - hysteresis: that requester's traffic must exceed Alpha times the
//     co-resident traffic — the move must win more locality than it loses,
//     by a margin, or the object oscillates;
//   - balance: after the move the destination must not exceed the
//     machine-wide mean resident count by more than MaxSkew, or affinity
//     chasing piles the working set onto a few nodes — and in a
//     barrier-synchronized program the most loaded node sets the pace, so
//     any locality win is erased by the skew.
//
// A lifetime MaxMoves bound caps per-object churn on top of all three.
package migrate

import "repro/internal/core"

// meanResident returns the machine-wide mean resident-object count.
func meanResident(rt *core.RT) float64 {
	total := 0
	for _, n := range rt.Nodes {
		total += n.Resident()
	}
	return float64(total) / float64(len(rt.Nodes))
}

// pickDest scans the object's remote-requester sketch for the best
// admissible destination. A candidate is admissible as a locality move
// (count reaches the MinTop evidence floor, beats Alpha times the
// co-resident traffic, and the destination stays within MaxSkew of the mean
// after the move) or, when the source node is itself more than MaxSkew
// above the mean, as a drain move (the destination must be below the mean).
// Candidates are tried heaviest-first; ties break on the lower node id so
// runs are deterministic.
func pickDest(rt *core.RT, n *core.NodeRT, o *core.Object, minTop int32, alpha float64, maxSkew int) (int, bool) {
	local, _ := o.Hits()
	mean := meanResident(rt)
	sourceLoaded := float64(n.Resident()) > mean+float64(maxSkew)
	type cand struct {
		node  int32
		count int32
	}
	var cands []cand
	o.ForEachRemoteSource(func(node, count int32) {
		cands = append(cands, cand{node, count})
	})
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i - 1
		for j >= 0 && (cands[j].count < c.count ||
			(cands[j].count == c.count && cands[j].node > c.node)) {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}
	for _, c := range cands {
		if int(c.node) == n.ID {
			continue
		}
		dest := rt.Nodes[c.node]
		after := float64(dest.Resident() + 1)
		if c.count >= minTop && float64(c.count) >= alpha*float64(local) &&
			after <= mean+float64(maxSkew) {
			return int(c.node), true
		}
		// Drain moves need no evidence floor: the win comes from evening
		// load, and the heaviest-first scan still sends the object to the
		// underloaded node it talks to most.
		if sourceLoaded && after <= mean {
			return int(c.node), true
		}
	}
	return 0, false
}

// decayAll halves every resident object's access counters, machine-wide.
// Iteration uses the runtime's deterministic per-node object order, and
// halving is a pure function of the counters, so decay never perturbs
// determinism.
func decayAll(rt *core.RT) {
	for _, n := range rt.Nodes {
		n.ForEachLocalObject(func(o *core.Object) { o.Decay() })
	}
}

// decayTick advances a policy's heartbeat counter and applies one halving
// every `every` ticks (0 disables decay). Returns the advanced counter.
func decayTick(rt *core.RT, ticks, every int) int {
	if every <= 0 {
		return ticks
	}
	ticks++
	if ticks%every == 0 {
		decayAll(rt)
	}
	return ticks
}

// Never is the null policy: counters are maintained, nothing moves. It is
// the control for measuring the overhead of the migration machinery alone.
type Never struct{}

// OnAccess never requests a move.
func (Never) OnAccess(rt *core.RT, n *core.NodeRT, o *core.Object, from int) (int, bool) {
	return 0, false
}

// Tick does nothing.
func (Never) Tick(rt *core.RT, now core.Instr) {}

// Threshold is the reactive policy: it is consulted on every invocation
// reaching an object and moves the object to its heaviest remote requester
// once the evidence/hysteresis/balance test passes.
type Threshold struct {
	MinTop   int32   // required sketch count for the top requester
	Alpha    float64 // required advantage over co-resident traffic
	MaxSkew  int     // allowed destination excess in resident objects
	MaxMoves int     // lifetime per-object move bound
	// DecayEvery halves every object's access counters each time this many
	// heartbeats (Config.MigrationPeriod) elapse, so evidence ages instead
	// of fossilizing the placement earned by early-run traffic. 0 disables
	// decay (and with no MigrationPeriod there is no heartbeat to decay on).
	DecayEvery int

	ticks int
}

// DefaultThreshold returns a Threshold tuned for iterative kernels: an
// object chases a clearly dominant requester after roughly an iteration of
// evidence, and settles once co-resident traffic wins. Counters are halved
// every other heartbeat, keeping roughly the last four periods of traffic
// decisive.
func DefaultThreshold() *Threshold {
	return &Threshold{MinTop: 96, Alpha: 1.5, MaxSkew: 1, MaxMoves: 2, DecayEvery: 2}
}

// OnAccess implements core.MigrationPolicy.
func (t *Threshold) OnAccess(rt *core.RT, n *core.NodeRT, o *core.Object, from int) (int, bool) {
	if o.Moves() >= t.MaxMoves {
		return 0, false
	}
	return pickDest(rt, n, o, t.MinTop, t.Alpha, t.MaxSkew)
}

// Tick ages the access counters; move decisions stay purely reactive.
func (t *Threshold) Tick(rt *core.RT, now core.Instr) {
	t.ticks = decayTick(rt, t.ticks, t.DecayEvery)
}

// Rebalance is the periodic policy: it acts only on the runtime's
// virtual-time heartbeat (Config.MigrationPeriod), scanning each node's
// resident objects in the runtime's deterministic order and requesting
// moves for those that pass the same test as Threshold, at most
// MaxMovesPerTick per node per tick.
type Rebalance struct {
	MinTop          int32   // required sketch count for the top requester
	Alpha           float64 // required advantage over co-resident traffic
	MaxSkew         int     // allowed destination excess in resident objects
	MaxMovesPerTick int     // per-node churn bound per heartbeat
	MaxMoves        int     // lifetime per-object move bound
	// DecayEvery halves every object's access counters each time this many
	// heartbeats elapse (see Threshold.DecayEvery). 0 disables decay.
	DecayEvery int

	ticks int
}

// DefaultRebalance returns a Rebalance with moderate churn bounds and the
// same every-other-heartbeat counter decay as DefaultThreshold.
func DefaultRebalance() *Rebalance {
	return &Rebalance{MinTop: 96, Alpha: 1.5, MaxSkew: 1, MaxMovesPerTick: 2, MaxMoves: 2, DecayEvery: 2}
}

// OnAccess never moves; Rebalance acts only on the heartbeat.
func (r *Rebalance) OnAccess(rt *core.RT, n *core.NodeRT, o *core.Object, from int) (int, bool) {
	return 0, false
}

// Tick implements core.MigrationPolicy: age the counters, then scan and
// request moves — this tick's decisions already use the aged evidence.
func (r *Rebalance) Tick(rt *core.RT, now core.Instr) {
	r.ticks = decayTick(rt, r.ticks, r.DecayEvery)
	for _, n := range rt.Nodes {
		moved := 0
		n.ForEachLocalObject(func(o *core.Object) {
			if moved >= r.MaxMovesPerTick || o.Moves() >= r.MaxMoves {
				return
			}
			dest, ok := pickDest(rt, n, o, r.MinTop, r.Alpha, r.MaxSkew)
			if !ok {
				return
			}
			rt.RequestMigration(n, o, dest)
			moved++
		})
	}
}

package lint

import (
	"go/ast"
	"os"
	"strings"
)

// GoldenPath verifies that golden-tested binaries keep every user-visible
// byte inside the swappable, buffered, flush-checked writer the golden
// tests capture. The house idiom (cmd/tables, cmd/sweep) is a package-level
// `var out io.Writer = os.Stdout` (or an io.Writer parameter threaded from
// main) that the golden tests swap for a bytes.Buffer; anything written
// around that funnel — an implicit-stdout fmt.Print, a direct os.Stdout
// argument outside main's wiring — is output the golden tests cannot see,
// which is exactly where byte-level regressions hide. Unchecked flushes are
// the other half of the contract: bufio and csv errors are sticky, so a
// bare `w.Flush()` with no error check (or a deferred one, whose error is
// unobservable) can truncate output and still exit zero.
//
// Scope: the pass fires only in package directories containing a
// *golden_test.go file — packages whose output IS a byte-level contract.
// Everything else (interactive CLIs, examples) may write to stdout freely
// and is skipped. Within a golden package it reports:
//
//   - fmt.Print / Printf / Println: implicit os.Stdout, and interleaves
//     unbuffered bytes with the buffered funnel even when stdout is meant;
//   - os.Stdout referenced outside func main and outside package-level var
//     initializers (both are the sanctioned wiring points);
//   - a bare `x.Flush()` expression statement in a function that never
//     checks `x.Error()` (the csv.Writer idiom; bufio's Flush returns its
//     error directly and must be consumed), and any deferred Flush.
var GoldenPath = &Analyzer{
	Name: "goldenpath",
	Doc:  "in golden-tested packages, keep all output inside the swappable checked-flush writer",
	Run:  runGoldenPath,
}

func runGoldenPath(pass *Pass) error {
	if !hasGoldenTest(pass.Dir) {
		return nil
	}
	for _, file := range pass.Files {
		fmtName := importLocalName(file, "fmt")
		osName := importLocalName(file, "os")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue // package-level var initializers may name os.Stdout: that is the funnel's default
			}
			inMain := fd.Recv == nil && fd.Name.Name == "main"
			checkGoldenFunc(pass, fd, inMain, fmtName, osName)
		}
	}
	return nil
}

// hasGoldenTest reports whether dir contains a *golden_test.go file.
func hasGoldenTest(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), "golden_test.go") {
			return true
		}
	}
	return false
}

func checkGoldenFunc(pass *Pass, fd *ast.FuncDecl, inMain bool, fmtName, osName string) {
	// First pass: receivers whose Error() is consulted somewhere in this
	// function — the csv.Writer flush idiom.
	errorChecked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Error" {
			if k := keyOf(sel.X); k != "" {
				errorChecked[k] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); ok && fmtName != "" && pkg.Name == fmtName {
				switch sel.Sel.Name {
				case "Print", "Printf", "Println":
					pass.Reportf(n.Pos(), "unsound",
						"%s.%s writes to implicit os.Stdout, bypassing the package's swappable writer: golden tests cannot see these bytes, and they interleave with the buffered output", fmtName, sel.Sel.Name)
				}
			}
		case *ast.SelectorExpr:
			if pkg, ok := n.X.(*ast.Ident); ok && osName != "" && pkg.Name == osName &&
				n.Sel.Name == "Stdout" && !inMain {
				pass.Reportf(n.Pos(), "unsound",
					"os.Stdout referenced outside func main: route output through the package's swappable writer so golden tests cover it")
			}
		case *ast.ExprStmt:
			if recv, ok := bareFlush(n.X); ok && !errorChecked[recv] {
				pass.Reportf(n.X.Pos(), "unsound",
					"unchecked %s.Flush(): writer errors are sticky and a failed flush must not exit zero; check the returned error, or %s.Error() for csv.Writer", recv, recv)
			}
		case *ast.DeferStmt:
			if recv, ok := bareFlush(n.Call); ok {
				pass.Reportf(n.Call.Pos(), "unsound",
					"deferred %s.Flush() discards the flush error: flush explicitly before returning and check it", recv)
			}
		}
		return true
	})
}

// bareFlush matches a no-argument <recv>.Flush() call and returns the
// receiver key.
func bareFlush(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Flush" {
		return "", false
	}
	k := keyOf(sel.X)
	if k == "" {
		return "", false
	}
	return k, true
}

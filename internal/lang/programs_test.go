package lang

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Larger compiled programs: a regression suite of realistic mini-language
// sources, each checked against a native Go oracle across execution models.

const nqueensSrc = `
// n-queens by bitmasks; recursion serializes through one future variable
// (the language names future slots, so wide joins use loops).
method nq(cols, d1, d2, row, n) {
    if row == n { return 1; }
    full = (1 << n) - 1;
    avail = (full ^ (cols | d1 | d2)) & full;
    count = 0;
    while avail != 0 {
        bit = avail & (0 - avail);
        avail = avail ^ bit;
        c = spawn nq(cols | bit, ((d1 | bit) << 1) & full, (d2 | bit) >> 1, row + 1, n) on self;
        touch c;
        count = count + c;
    }
    return count;
}
`

const gcdSrc = `
method gcd(a, b) {
    x = a;
    y = b;
    while y != 0 {
        t = x % y;
        x = y;
        y = t;
    }
    return x;
}
`

const ackermannSrc = `
method ack(m, n) {
    if m == 0 { return n + 1; }
    if n == 0 {
        r = spawn ack(m - 1, 1) on self;
        touch r;
        return r;
    }
    inner = spawn ack(m, n - 1) on self;
    touch inner;
    outer = spawn ack(m - 1, inner) on self;
    touch outer;
    return outer;
}
`

const sumTreeSrc = `
// Build a binary tree of objects with newobj, then sum it by traversal.
// node state: [0]=value, [1]=left ref (0=absent), [2]=right ref.
method build(depth, v) {
    node = newobj(3);
    w = spawn setVal(v) on node;
    touch w;
    if depth > 0 {
        l = spawn build(depth - 1, v * 2) on self;
        r = spawn build(depth - 1, v * 2 + 1) on self;
        touch l, r;
        w2 = spawn setKids(l, r) on node;
        touch w2;
    }
    return node;
}
method setVal(v) { state[0] = v; return 0; }
method setKids(l, r) { state[1] = l; state[2] = r; return 0; }
method treeSum(unused) {
    total = state[0];
    l = state[1];
    r = state[2];
    if l != 0 {
        a = spawn treeSum(0) on l;
        touch a;
        total = total + a;
    }
    if r != 0 {
        b = spawn treeSum(0) on r;
        touch b;
        total = total + b;
    }
    return total;
}
method main(depth) {
    root = spawn build(depth, 1) on self;
    touch root;
    s = spawn treeSum(0) on root;
    touch s;
    return s;
}
`

func runProgram(t *testing.T, src, entry string, cfg core.Config, args ...core.Word) int64 {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := c.Prog.Resolve(cfg.Interfaces); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(2)
	rt := core.NewRT(eng, machine.CM5(), c.Prog, cfg)
	self := rt.Node(0).NewObject(make([]core.Word, 4))
	var res core.Result
	rt.StartOn(0, c.Methods[entry], self, &res, args...)
	rt.Run()
	if !res.Done {
		t.Fatalf("%s did not complete", entry)
	}
	if err := rt.CheckQuiescence(); err != nil {
		t.Fatal(err)
	}
	return res.Val.Int()
}

func TestCompiledNQueens(t *testing.T) {
	want := map[int64]int64{4: 2, 5: 10, 6: 4, 7: 40}
	for _, cfg := range []core.Config{core.DefaultHybrid(), core.ParallelOnly()} {
		for n, w := range want {
			got := runProgram(t, nqueensSrc, "nq", cfg, 0, 0, 0, core.IntW(0), core.IntW(n))
			if got != w {
				t.Fatalf("hybrid=%v nq(%d) = %d, want %d", cfg.Hybrid, n, got, w)
			}
		}
	}
}

func TestCompiledGCD(t *testing.T) {
	cases := [][3]int64{{12, 18, 6}, {17, 5, 1}, {100, 75, 25}, {7, 0, 7}}
	for _, c := range cases {
		got := runProgram(t, gcdSrc, "gcd", core.DefaultHybrid(), core.IntW(c[0]), core.IntW(c[1]))
		if got != c[2] {
			t.Fatalf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestCompiledAckermann(t *testing.T) {
	// ack(2, 3) = 9; ack(3, 3) = 61.
	if got := runProgram(t, ackermannSrc, "ack", core.DefaultHybrid(), core.IntW(2), core.IntW(3)); got != 9 {
		t.Fatalf("ack(2,3) = %d, want 9", got)
	}
	if got := runProgram(t, ackermannSrc, "ack", core.ParallelOnly(), core.IntW(3), core.IntW(3)); got != 61 {
		t.Fatalf("ack(3,3) = %d, want 61", got)
	}
}

func TestCompiledTreeSum(t *testing.T) {
	// Values: root 1; children 2,3; grandchildren 4,5,6,7 ... depth d gives
	// the complete tree holding 1..2^(d+1)-1, summing to n(n+1)/2.
	for _, depth := range []int64{0, 1, 2, 3, 4} {
		n := int64(1)<<(depth+1) - 1
		want := n * (n + 1) / 2
		got := runProgram(t, sumTreeSrc, "main", core.DefaultHybrid(), core.IntW(depth))
		if got != want {
			t.Fatalf("treeSum(depth=%d) = %d, want %d", depth, got, want)
		}
	}
}

func TestShiftAndBitwiseOperators(t *testing.T) {
	src := `
method bits(a, b) {
    x = (a << 3) | (b >> 1);
    y = x & 255;
    z = y ^ 15;
    return z;
}
`
	a, b := int64(5), int64(9)
	want := (((a << 3) | (b >> 1)) & 255) ^ 15
	if got := runProgram(t, src, "bits", core.DefaultHybrid(), core.IntW(a), core.IntW(b)); got != want {
		t.Fatalf("bits = %d, want %d", got, want)
	}
}

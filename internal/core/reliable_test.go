package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

// lossFaults is the standard lossy network used by these tests: drops,
// duplicates and reordering all at once.
func lossFaults(seed uint64, loss float64) *sim.Faults {
	return &sim.Faults{
		Seed:      seed,
		Drop:      loss,
		Dup:       loss / 2,
		Reorder:   loss,
		JitterMax: 500,
	}
}

// runChurnReliable runs the churn workload (each of `objects` cells bumped
// exactly `rounds` times) under cfg and asserts completion, quiescence, and
// that every bump was applied exactly once — the exactly-once invariant made
// observable as state.
func runChurnReliable(t *testing.T, cfg Config, nodes, objects int, rounds int64) *RT {
	t.Helper()
	p := NewProgram()
	driver, _ := buildChurn(p)
	if err := p.Resolve(cfg.Interfaces); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(nodes)
	rt := NewRT(eng, machine.CM5(), p, cfg)
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = rt.Node(i % nodes).NewObject(&cellState{})
	}
	d := rt.Node(0).NewObject(&churnState{targets: refs})
	var res Result
	rt.StartOn(0, driver, d, &res, IntW(rounds))
	rt.Run()
	if !res.Done {
		t.Fatal("churn driver did not complete")
	}
	if err := rt.CheckQuiescence(); err != nil {
		t.Fatal(err)
	}
	// buildChurn strides by 7; with gcd(7, objects) == 1 every cell is hit
	// exactly `rounds` times. A lost request would leave a cell short; a
	// doubly-executed handler would overshoot.
	for i, ref := range refs {
		if v := rt.StateOf(ref).(*cellState).v; v != rounds {
			t.Fatalf("cell %d bumped %d times, want exactly %d", i, v, rounds)
		}
	}
	return rt
}

// TestReliableNoFaults: the reliable layer on a clean network delivers the
// same results with zero retransmissions and zero suppressed duplicates.
func TestReliableNoFaults(t *testing.T) {
	cfg := DefaultHybrid()
	cfg.Reliable = true
	rt := runChurnReliable(t, cfg, 4, 5, 6)
	s := rt.TotalStats()
	if s.Retransmits != 0 {
		t.Fatalf("Retransmits = %d on a clean network, want 0", s.Retransmits)
	}
	if s.DupSuppressed != 0 {
		t.Fatalf("DupSuppressed = %d on a clean network, want 0", s.DupSuppressed)
	}
	if s.AcksSent == 0 {
		t.Fatal("AcksSent = 0: the reliable layer never acked anything")
	}
}

// TestReliableSurvivesLoss is the tentpole end-to-end check: a lossy,
// duplicating, reordering network under the full hybrid model with chaotic
// migration, and every handler still runs exactly once.
func TestReliableSurvivesLoss(t *testing.T) {
	cfg := DefaultHybrid()
	cfg.Reliable = true
	cfg.Faults = lossFaults(11, 0.05)
	cfg.Migration = &chaosPolicy{lcg: 99, every: 5}
	rt := runChurnReliable(t, cfg, 4, 5, 8)
	s := rt.TotalStats()
	fs := rt.Eng.FaultStats()
	if fs.Drops == 0 {
		t.Fatal("the fault layer dropped nothing at 5% loss")
	}
	if s.DropsSeen != fs.Drops {
		t.Fatalf("DropsSeen = %d, engine counted %d drops", s.DropsSeen, fs.Drops)
	}
	if s.Retransmits == 0 {
		t.Fatal("messages were dropped but nothing was retransmitted")
	}
	if s.MaxBackoff == 0 {
		t.Fatal("retransmissions happened but MaxBackoff was never recorded")
	}
	if s.DupSuppressed == 0 {
		t.Fatal("duplicates were injected (or retransmits raced acks) but none were suppressed")
	}
}

// TestReliableDupOnly: a duplicate-only network needs no retransmissions,
// only suppression — and must suppress every injected duplicate.
func TestReliableDupOnly(t *testing.T) {
	cfg := DefaultHybrid()
	cfg.Reliable = true
	cfg.Faults = &sim.Faults{Seed: 5, Dup: 0.2}
	rt := runChurnReliable(t, cfg, 3, 5, 6)
	s := rt.TotalStats()
	fs := rt.Eng.FaultStats()
	if fs.Dups == 0 {
		t.Fatal("no duplicates injected at 20% dup rate")
	}
	if s.Retransmits != 0 {
		t.Fatalf("Retransmits = %d with no drops, want 0", s.Retransmits)
	}
	// Not every injected duplicate shows up in DupSuppressed: duplicated ack
	// frames are absorbed idempotently in recvAck without being counted. The
	// state check in runChurnReliable is the real exactly-once assertion.
	if s.DupSuppressed == 0 {
		t.Fatal("duplicates were injected but none were suppressed")
	}
}

// TestMsgWords pins the modeled payload size of every message kind — these
// sizes feed every transport charge in the cost model, so a drift here
// silently changes all the tables.
func TestMsgWords(t *testing.T) {
	cases := []struct {
		name string
		msg  *Msg
		want int
	}{
		{"request/0 args", &Msg{kind: msgRequest}, 4},
		{"request/3 args", &Msg{kind: msgRequest, args: make([]Word, 3)}, 7},
		{"reply", &Msg{kind: msgReply, val: IntW(1)}, 2},
		{"moved", &Msg{kind: msgMoved, loc: 3, ver: 2}, 3},
		{"migrate/default payload", &Msg{kind: msgMigrate, obj: &Object{State: &cellState{}}}, 4 + DefaultMigrateWords},
		{"migrate/sized payload", &Msg{kind: msgMigrate, obj: &Object{State: sized(17)}}, 4 + 17},
	}
	for _, c := range cases {
		if got := c.msg.words(); got != c.want {
			t.Errorf("%s: words() = %d, want %d", c.name, got, c.want)
		}
	}
	// The reliable layer's framing overheads are part of the same contract.
	if relSeqWords != 1 {
		t.Errorf("relSeqWords = %d, want 1 (one sequence-header word per data frame)", relSeqWords)
	}
	if ackWords != 2 {
		t.Errorf("ackWords = %d, want 2 (link id + cumulative cursor)", ackWords)
	}
}

// sized is a Migratable test state with an explicit serialized size.
type sized int

func (s sized) MigrateWords() int { return int(s) }

// traceChurn runs the churn workload with a tracer installed and returns the
// recorded events plus the completion time.
func traceChurn(t *testing.T, faults *sim.Faults) ([]trace.Event, sim.Time) {
	t.Helper()
	p := NewProgram()
	driver, _ := buildChurn(p)
	cfg := DefaultHybrid()
	cfg.Reliable = true
	cfg.Faults = faults
	cfg.Migration = &chaosPolicy{lcg: 7, every: 4}
	buf := trace.NewBuffer(1 << 18)
	cfg.Tracer = buf
	if err := p.Resolve(cfg.Interfaces); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(4)
	rt := NewRT(eng, machine.CM5(), p, cfg)
	refs := make([]Ref, 5)
	for i := range refs {
		refs[i] = rt.Node(i % 4).NewObject(&cellState{})
	}
	d := rt.Node(0).NewObject(&churnState{targets: refs})
	var res Result
	rt.StartOn(0, driver, d, &res, IntW(6))
	rt.Run()
	if !res.Done {
		t.Fatal("churn driver did not complete")
	}
	if buf.Dropped != 0 {
		t.Fatalf("trace overflowed (%d dropped): grow the buffer", buf.Dropped)
	}
	return buf.AppendTo(make([]trace.Event, 0, buf.Len())), rt.Eng.MaxClock()
}

// TestDeterministicReplay is the reproducibility regression: the same seed
// and fault configuration must yield a byte-identical event trace and the
// same completion time across two runs — loss-free and at 5% loss.
func TestDeterministicReplay(t *testing.T) {
	cases := []struct {
		name   string
		faults func() *sim.Faults
	}{
		{"loss-free", func() *sim.Faults { return nil }},
		{"5% loss", func() *sim.Faults { return lossFaults(23, 0.05) }},
	}
	for _, c := range cases {
		ev1, t1 := traceChurn(t, c.faults())
		ev2, t2 := traceChurn(t, c.faults())
		if t1 != t2 {
			t.Fatalf("%s: completion times differ: %d vs %d", c.name, t1, t2)
		}
		if len(ev1) != len(ev2) {
			t.Fatalf("%s: trace lengths differ: %d vs %d", c.name, len(ev1), len(ev2))
		}
		if !reflect.DeepEqual(ev1, ev2) {
			for i := range ev1 {
				if ev1[i] != ev2[i] {
					t.Fatalf("%s: traces diverge at event %d: %+v vs %+v", c.name, i, ev1[i], ev2[i])
				}
			}
		}
	}
}

// TestValidateConfig pins the fail-fast configuration errors (satellite:
// these used to surface as panics deep inside a run, or not at all).
func TestValidateConfig(t *testing.T) {
	mdl := machine.CM5()
	cases := []struct {
		name string
		mdl  *machine.Model
		mut  func(*Config)
		want string // substring of the error; "" means must validate
	}{
		{"nil model", nil, func(c *Config) {}, "machine model is nil"},
		{"negative migration period", mdl, func(c *Config) { c.MigrationPeriod = -1 }, "MigrationPeriod"},
		{"period without policy", mdl, func(c *Config) { c.MigrationPeriod = 100 }, "without a Migration policy"},
		{"negative max words", mdl, func(c *Config) { c.MaxMsgWords = -1 }, "MaxMsgWords"},
		{"negative hop bound", mdl, func(c *Config) { c.MaxForwardHops = -2 }, "MaxForwardHops"},
		{"negative rto", mdl, func(c *Config) { c.Reliable = true; c.RetransmitBase = -5 }, "RetransmitBase"},
		{"rto base over cap", mdl, func(c *Config) { c.Reliable = true; c.RetransmitBase = 100; c.RetransmitCap = 50 }, "exceeds RetransmitCap"},
		{"drop probability out of range", mdl, func(c *Config) { c.Faults = &sim.Faults{Drop: 1.5}; c.Reliable = true }, "out of range"},
		{"lossy without reliable", mdl, func(c *Config) { c.Faults = &sim.Faults{Drop: 0.01} }, "Reliable is off"},
		{"crashes without reliable", mdl, func(c *Config) { c.Faults = &sim.Faults{CrashEvery: 1000, CrashLen: 100} }, "Reliable is off"},
		{"crashes with migration", mdl, func(c *Config) {
			c.Reliable = true
			c.Faults = &sim.Faults{CrashEvery: 1000, CrashLen: 100}
			c.Migration = &chaosPolicy{}
		}, "without migration"},
		{"negative checkpoint period", mdl, func(c *Config) { c.CheckpointPeriod = -1 }, "CheckpointPeriod"},
		{"crash window too long", mdl, func(c *Config) {
			c.Reliable = true
			c.Faults = &sim.Faults{CrashEvery: 100, CrashLen: 100}
		}, "CrashLen"},
		{"valid default", mdl, func(c *Config) {}, ""},
		{"valid lossy reliable", mdl, func(c *Config) { c.Faults = lossFaults(1, 0.05); c.Reliable = true }, ""},
		{"valid crashy checkpointed", mdl, func(c *Config) {
			c.Reliable = true
			c.Faults = &sim.Faults{CrashEvery: 100_000, CrashLen: 5_000}
			c.CheckpointPeriod = 5_000
		}, ""},
	}
	for _, c := range cases {
		cfg := DefaultHybrid()
		c.mut(&cfg)
		err := ValidateConfig(c.mdl, cfg)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: config validated, want error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestForwardHopBound: a request that exceeds the forwarding-chain bound
// must fail loudly with a traced KHopLimit event, not ricochet forever.
func TestForwardHopBound(t *testing.T) {
	p := NewProgram()
	buildFib(p)
	if err := p.Resolve(Interfaces3); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultHybrid()
	cfg.MaxForwardHops = 4
	buf := trace.NewBuffer(64)
	cfg.Tracer = buf
	eng := sim.NewEngine(2)
	rt := NewRT(eng, machine.CM5(), p, cfg)
	ref := rt.Node(0).NewObject(&cellState{})
	stub := &Object{Ref: ref, away: true, fwdTo: 1, fwdVer: 1, wantMove: -1}
	rt.Node(0).installEntry(ref, stub)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("forwardRequest accepted a request past the hop bound")
		}
		if !strings.Contains(r.(string), "exceeded forwarding bound") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if buf.Count(trace.KHopLimit) != 1 {
			t.Fatalf("KHopLimit count = %d, want 1", buf.Count(trace.KHopLimit))
		}
	}()
	msg := &Msg{kind: msgRequest, target: ref, from: 1, hops: 4}
	rt.forwardRequest(rt.Node(0), msg, stub)
}

package migrate_test

import (
	"testing"

	"repro/apps/mdforce"
	migapp "repro/apps/migrate"
	"repro/internal/core"
	"repro/internal/instr"
	"repro/internal/machine"
	"repro/internal/obsv"
	policy "repro/internal/migrate"
	"repro/internal/trace"
)

// TestAttributionMatchesRun: cycle attribution must stay exact through
// object migration — the one protocol where bodies forward mid-flight —
// and the migration instants must land in the registry.
func TestAttributionMatchesRun(t *testing.T) {
	p := migapp.DefaultParams()
	p.MD.Atoms, p.MD.Clusters, p.MD.Box, p.MD.Nodes = 600, 27, 18, 8
	p.Iters = 2
	inst := mdforce.Generate(p.MD)
	assign := migapp.CellAssignment(inst, false)

	m := obsv.New()
	cfg := core.DefaultHybrid()
	cfg.Migration = policy.DefaultThreshold()
	m.Install(&cfg)
	mdl := machine.CM5()
	r := migapp.Run(mdl, cfg, inst, p.Iters, assign)
	if err := m.CheckAttribution(); err != nil {
		t.Fatal(err)
	}
	if got := mdl.Seconds(instr.Instr(m.MaxClock())); got != r.Seconds {
		t.Fatalf("attributed clock %.9fs != run %.9fs", got, r.Seconds)
	}
	if r.Stats.MigratesOut > 0 && m.Count(trace.KMigrateStart) == 0 {
		t.Fatalf("%d objects migrated but no KMigrateStart reached the registry", r.Stats.MigratesOut)
	}
}

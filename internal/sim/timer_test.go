package sim

import "testing"

// TestCancelledTimerNotPendingWork: a stopped timer's dead heap slot must
// not be reported as pending work.
func TestCancelledTimerNotPendingWork(t *testing.T) {
	eng := NewEngine(1)
	newFifo(eng, 1)
	tm := eng.AfterFunc(1000, func() { t.Error("cancelled timer fired") })
	if got := eng.PendingWork(); got != 1 {
		t.Fatalf("PendingWork = %d before Stop, want 1", got)
	}
	tm.Stop()
	if got := eng.PendingWork(); got != 0 {
		t.Fatalf("PendingWork = %d after Stop, want 0", got)
	}
	tm.Stop() // double-stop must not double-count
	if got := eng.PendingWork(); got != 0 {
		t.Fatalf("PendingWork = %d after double Stop, want 0", got)
	}
	eng.Run()
	if got := eng.PendingWork(); got != 0 {
		t.Fatalf("PendingWork = %d after the dead event drained, want 0", got)
	}
}

// TestStopAfterFireIsNoOp: stopping a timer that already fired must not
// disturb the pending-work accounting of later events.
func TestStopAfterFireIsNoOp(t *testing.T) {
	eng := NewEngine(1)
	newFifo(eng, 1)
	fired := false
	tm := eng.AfterFunc(10, func() { fired = true })
	eng.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
	tm.Stop()
	eng.Schedule(eng.Now()+5, func() {})
	if got := eng.PendingWork(); got != 1 {
		t.Fatalf("PendingWork = %d, want 1 (post-fire Stop must not decrement)", got)
	}
	eng.Run()
}

// TestServiceStopsWithOnlyCancelledTimers is the regression for the
// satellite bug: cancelled timers used to count toward PendingWork, so a
// periodic service (migration pump, ack flusher) that reschedules while
// PendingWork() > 0 would keep ticking until the dead timer's slot drained.
// With only a cancelled timer outstanding the service must stop after its
// first tick.
func TestServiceStopsWithOnlyCancelledTimers(t *testing.T) {
	eng := NewEngine(1)
	newFifo(eng, 1)
	tm := eng.AfterFunc(5000, func() { t.Error("cancelled timer fired") })
	tm.Stop()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if eng.PendingWork() > 0 {
			eng.ScheduleService(eng.Now()+10, tick)
		}
	}
	eng.ScheduleService(10, tick)
	eng.Run()
	if ticks != 1 {
		t.Fatalf("service ticked %d times, want 1: only a cancelled timer was pending", ticks)
	}
}

package em3d_test

import (
	"testing"

	"repro/apps/em3d"
	"repro/internal/core"
	"repro/internal/instr"
	"repro/internal/machine"
	"repro/internal/obsv"
)

// TestAttributionMatchesRun: the observability layer's cycle attribution
// must reproduce the kernel's own reported time exactly.
func TestAttributionMatchesRun(t *testing.T) {
	g := em3d.Generate(em3d.Params{N: 256, Degree: 8, Iters: 2, Nodes: 8, PLocal: 0.99, Seed: 7})
	for _, v := range []em3d.Variant{em3d.Pull, em3d.Push, em3d.Forward} {
		m := obsv.New()
		cfg := core.DefaultHybrid()
		m.Install(&cfg)
		mdl := machine.CM5()
		r := em3d.Run(mdl, cfg, v, g)
		if err := m.CheckAttribution(); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if got := mdl.Seconds(instr.Instr(m.MaxClock())); got != r.Seconds {
			t.Fatalf("%s: attributed clock %.9fs != run %.9fs", v, got, r.Seconds)
		}
	}
}

package core

import "fmt"

// DeclError reports a method declaration contradicted at runtime: the
// activation did something its Method's hand-declared analysis inputs
// (MayBlockLocal/Locks, Captures, Calls, Forwards) say it cannot do. It is
// the payload of the panics raised under Config.CheckDecls — the dynamic
// complement to the cmd/concertvet static pass. A contradicted declaration
// means analysis.Solve ran on wrong inputs, so the schemas the run executed
// under are untrustworthy; the error therefore carries the frame state at
// the violation point for diagnosis.
type DeclError struct {
	// Method is the name of the misdeclared method.
	Method string
	// Field names the declared field the body contradicted:
	// "MayBlockLocal", "Captures", "Calls", or "Forwards".
	Field string
	// Callee is the invoked or forwarded-to method for Calls/Forwards
	// violations; empty otherwise.
	Callee string
	// Node, PC and Mode are the frame state at the violation: the node the
	// activation ran on, its resume point, and whether it was executing as
	// a speculative stack frame or a heap context.
	Node int
	PC   int
	Mode Mode
	// Detail is a human-readable account of what the body actually did.
	Detail string
}

func (e *DeclError) Error() string {
	mode := "heap"
	if e.Mode == StackMode {
		mode = "stack"
	}
	msg := fmt.Sprintf("declaration violated: method %s (node %d, pc %d, %s mode): %s",
		e.Method, e.Node, e.PC, mode, e.Detail)
	if e.Callee != "" {
		msg += fmt.Sprintf(" [%s missing %s]", e.Field, e.Callee)
	} else {
		msg += fmt.Sprintf(" [declared %s contradicted]", e.Field)
	}
	return msg
}

// declViolation raises the CheckDecls panic for frame fr. Callers have
// already established both that CheckDecls is set and that the declaration
// is contradicted; this only assembles the report.
func (rt *RT) declViolation(fr *Frame, field, callee, detail string) {
	panic(&DeclError{
		Method: fr.M.Name,
		Field:  field,
		Callee: callee,
		Node:   fr.Node.ID,
		PC:     fr.PC,
		Mode:   fr.Mode,
		Detail: detail,
	})
}

// declaredEdge reports whether m appears in the declared edge list.
func declaredEdge(list []*Method, m *Method) bool {
	for _, d := range list {
		if d == m {
			return true
		}
	}
	return false
}

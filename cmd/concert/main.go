// Command concert runs one of the paper's application kernels on a
// simulated multicomputer with full control over the machine model, the
// execution-model configuration, and the data layout, and prints timing,
// locality and execution-model statistics for the run.
//
// Usage:
//
//	concert -app sor     [-machine cm5|t3d|sparc] [-mode hybrid|parallel]
//	                     [-nodes N] [-size G] [-block B] [-iters I]
//	concert -app mdforce [-machine ...] [-mode ...] [-nodes N] [-size atoms]
//	                     [-layout random|spatial]
//	concert -app em3d    [-machine ...] [-mode ...] [-nodes N] [-size graphnodes]
//	                     [-variant pull|push|forward] [-layout random|blocked]
//	                     [-degree D] [-iters I]
//	concert -app serve   [-machine ...] [-mode ...] [-nodes N] [-size keys]
//	                     [-rate REQ/S] [-duration-ms MS] [-slo-us US]
//	                     [-policy none|threshold|rebalance] [-loss P]
//
// Every app accepts -net fattree [-radix R] to route messages through a
// simulated fat-tree interconnect (hop-count latency plus per-link
// contention) instead of the flat uniform-latency model, -event-queue
// calendar|heap to pick the simulator's internal event queue, and -engine
// serial|parallel [-shards N] to pick the execution engine (results are
// byte-identical across queues and engines; both are host-side performance
// choices only).
//
// Add -verify to cross-check the simulated result against the native Go
// reference implementation (for serve: every read-modify-write applied
// exactly once). Add -profile for the per-method cycle attribution table
// and the critical-path breakdown (for serve, additionally the aggregated
// compute/network/wait partition of the p99 tail requests), and -trace-out
// FILE to export the run as Chrome trace_event JSON for ui.perfetto.dev.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/apps/chaos"
	"repro/apps/em3d"
	"repro/apps/mdforce"
	"repro/apps/serve"
	"repro/apps/sor"
	"repro/internal/core"
	"repro/internal/instr"
	"repro/internal/machine"
	"repro/internal/obsv"
	"repro/internal/sim"
)

func main() {
	app := flag.String("app", "sor", "kernel: sor, mdforce, em3d, serve")
	machineName := flag.String("machine", "cm5", "machine model: cm5, t3d, sparc")
	mode := flag.String("mode", "hybrid", "execution model: hybrid, parallel")
	interfaces := flag.Int("interfaces", 3, "sequential interfaces for hybrid mode: 1, 2 or 3")
	nodes := flag.Int("nodes", 64, "number of simulated processors")
	size := flag.Int("size", 0, "problem size (grid side / atoms / graph nodes); 0 = default")
	block := flag.Int("block", 8, "sor: block-cyclic block size")
	iters := flag.Int("iters", 10, "sor/em3d: iterations")
	layoutName := flag.String("layout", "spatial", "mdforce: random|spatial; em3d: random|blocked")
	variant := flag.String("variant", "pull", "em3d: pull, push, forward")
	degree := flag.Int("degree", 16, "em3d: in-degree")
	seed := flag.Int64("seed", 1995, "workload seed")
	rate := flag.Float64("rate", 0, "serve: offered load in requests/second (0 = default)")
	durationMS := flag.Float64("duration-ms", 0, "serve: traffic horizon in simulated milliseconds (0 = default)")
	sloUS := flag.Float64("slo-us", 0, "serve: latency SLO in microseconds (0 = default)")
	policyName := flag.String("policy", "none", "serve: placement policy: none, threshold, rebalance")
	loss := flag.Float64("loss", 0, "serve: message-loss rate; > 0 injects faults and enables the reliable layer")
	crashEvery := flag.Float64("crash-every", 0, "serve: mean microseconds between fail-stop node crashes (0 = none)")
	crashLen := flag.Float64("crash-len", 250, "serve: microseconds a crashed node stays down before rejoining")
	ckptPeriod := flag.Float64("ckpt-period", 0, "serve: checkpoint period in microseconds (0 = no checkpointing)")
	retries := flag.Int("retries", 0, "serve: max deadline-based retries per request (0 = none)")
	netName := flag.String("net", "flat", "interconnect model: flat (uniform latency) or fattree (hop count + per-link contention)")
	radix := flag.Int("radix", 0, "fattree: switch radix (0 = default)")
	queueName := flag.String("event-queue", "calendar", "simulator event queue: calendar or heap (byte-identical results; host performance only)")
	engineName := flag.String("engine", "serial", "execution engine: serial or parallel (byte-identical results; host performance only)")
	shards := flag.Int("shards", 0, "parallel engine: worker count (0 = one per CPU)")
	verify := flag.Bool("verify", false, "check the result against the native reference")
	profile := flag.Bool("profile", false, "print per-method cycle attribution and the critical path")
	traceOut := flag.String("trace-out", "", "write the run as Chrome trace_event JSON to FILE")
	flag.Parse()

	if k, ok := sim.QueueByName(*queueName); ok {
		sim.SetDefaultQueue(k)
	} else {
		fatalf("unknown event queue %q (want calendar or heap)", *queueName)
	}
	if k, ok := sim.EngineByName(*engineName); ok {
		sim.SetDefaultEngine(k)
		sim.SetDefaultShards(*shards)
	} else {
		fatalf("unknown engine %q (want serial or parallel)", *engineName)
	}

	mdl := machine.ByName(*machineName)
	if mdl == nil {
		fatalf("unknown machine %q", *machineName)
	}
	cfg := core.DefaultHybrid()
	switch *mode {
	case "hybrid":
		switch *interfaces {
		case 1:
			cfg.Interfaces = core.Interfaces1
		case 2:
			cfg.Interfaces = core.Interfaces2
		case 3:
			cfg.Interfaces = core.Interfaces3
		default:
			fatalf("interfaces must be 1, 2 or 3")
		}
	case "parallel":
		cfg = core.ParallelOnly()
	default:
		fatalf("unknown mode %q", *mode)
	}

	switch *netName {
	case "flat":
	case "fattree":
		r := *radix
		cfg.Network = func(nodes int) machine.Network { return machine.NewFatTree(nodes, r, mdl) }
	default:
		fatalf("unknown network model %q (want flat or fattree)", *netName)
	}

	var metrics *obsv.Metrics
	if *profile || *traceOut != "" {
		metrics = obsv.New()
		metrics.Install(&cfg)
	}

	switch *app {
	case "sor":
		g := orDefault(*size, 128)
		p := intSqrt(*nodes)
		if p*p != *nodes {
			fatalf("sor needs a square node count, got %d", *nodes)
		}
		pr := sor.Params{G: g, P: p, B: *block, Iters: *iters}
		r := sor.Run(mdl, cfg, pr)
		report(mdl, r.Seconds, r.LocalFraction, r.Messages, r.Stats, r.Counters)
		if *verify {
			want := sor.Native(pr.G, pr.Iters)
			verdict(r.Checksum == want, fmt.Sprintf("checksum %v vs native %v", r.Checksum, want))
		}
	case "mdforce":
		pr := mdforce.DefaultParams()
		pr.Nodes = *nodes
		pr.Seed = *seed
		pr.Spatial = *layoutName == "spatial"
		if *size > 0 {
			pr.Atoms = *size
		}
		inst := mdforce.Generate(pr)
		r := mdforce.Run(mdl, cfg, inst)
		fmt.Printf("pairs: %d\n", r.PairCount)
		report(mdl, r.Seconds, r.LocalFraction, r.Messages, r.Stats, r.Counters)
		if *verify {
			err := mdforce.MaxRelError(r.Forces, mdforce.Native(inst))
			verdict(err < 1e-9, fmt.Sprintf("max relative force error %.2e", err))
		}
	case "em3d":
		pr := em3d.Params{
			N:               orDefault(*size, 2048),
			Degree:          *degree,
			Iters:           *iters,
			Nodes:           *nodes,
			PLocal:          0.99,
			RandomPlacement: *layoutName == "random",
			Seed:            *seed,
		}
		var v em3d.Variant
		switch *variant {
		case "pull":
			v = em3d.Pull
		case "push":
			v = em3d.Push
		case "forward":
			v = em3d.Forward
		default:
			fatalf("unknown em3d variant %q", *variant)
		}
		g := em3d.Generate(pr)
		r := em3d.Run(mdl, cfg, v, g)
		report(mdl, r.Seconds, r.LocalFraction, r.Messages, r.Stats, r.Counters)
		if *verify {
			want := em3d.Native(g)
			verdict(r.Checksum == want, fmt.Sprintf("checksum %v vs native %v", r.Checksum, want))
		}
	case "serve":
		p := serve.DefaultParams(*seed)
		p.Nodes = *nodes
		if *size > 0 {
			p.Keys = *size
		}
		// User-facing units are wall-clock at the machine's clock rate; the
		// generator wants virtual instructions.
		perSec := mdl.MHz * 1e6
		if *rate > 0 {
			p.Load.MeanGap = perSec / *rate
		}
		if *durationMS > 0 {
			p.Load.Horizon = int64(*durationMS / 1e3 * perSec)
		}
		if *sloUS > 0 {
			p.SLO = int64(*sloUS / 1e6 * perSec)
		}
		switch *policyName {
		case "none":
		case "threshold":
			cfg.Migration = serve.ThresholdPolicy()
		case "rebalance":
			cfg.Migration = serve.RebalancePolicy()
			cfg.MigrationPeriod = serve.RebalancePeriod
		default:
			fatalf("unknown serve policy %q", *policyName)
		}
		if *loss > 0 {
			cfg.Faults = chaos.Faults(uint64(*seed), *loss)
			cfg.Reliable = true
		}
		if *crashEvery > 0 {
			if cfg.Faults == nil {
				cfg.Faults = &sim.Faults{Seed: uint64(*seed)}
			}
			cfg.Faults.CrashEvery = sim.Time(*crashEvery / 1e6 * perSec)
			cfg.Faults.CrashLen = sim.Time(*crashLen / 1e6 * perSec)
			// Crash rejoin needs the link layer's incarnation epochs.
			cfg.Reliable = true
		}
		if *ckptPeriod > 0 {
			cfg.CheckpointPeriod = instr.Instr(*ckptPeriod / 1e6 * perSec)
		}
		if *retries > 0 {
			// Deadline at four SLO budgets: far enough above the congested
			// tail that retries chase losses, not slow replies, yet early
			// enough to mask a crash window within a few attempts.
			p.RetryAfter = instr.Instr(4 * p.SLO)
			p.MaxRetries = *retries
		}
		r := serve.Run(mdl, cfg, p)
		us := func(v int64) float64 { return mdl.Seconds(instr.Instr(v)) * 1e6 }
		fmt.Printf("requests: %d   ops: %d   rmws: %d   moves: %d\n", r.Requests, r.Ops, r.RMWs, r.Moves)
		fmt.Printf("latency: p50 %.0f us   p99 %.0f us   p999 %.0f us   SLO(<=%.0f us): %.1f%%\n",
			us(r.P50), us(r.P99), us(r.P999), us(p.SLO), 100*r.SLOFrac)
		report(mdl, r.Seconds, r.LocalFraction, r.Messages, r.Stats, r.Counters)
		if *verify {
			verdict(r.Applied == r.RMWs,
				fmt.Sprintf("%d of %d RMWs applied exactly once", r.Applied, r.RMWs))
		}
		if metrics != nil && *profile {
			tailPartition(metrics, mdl)
		}
	default:
		fatalf("unknown app %q", *app)
	}

	if metrics != nil {
		finishObservability(metrics, mdl, *app, *profile, *traceOut)
	}
}

// tailPartition aggregates the critical-path partitions of every p99-tail
// request and prints the combined split: how much of the stragglers' time
// was compute, network flight, or waiting.
func tailPartition(m *obsv.Metrics, mdl *machine.Model) {
	tail := m.TailRequests(0.99)
	if len(tail) == 0 {
		return
	}
	sum := obsv.PathReport{ByMethod: map[string]int64{}}
	for _, rq := range tail {
		pr := m.PartitionRequest(rq)
		sum.Total += pr.Total
		sum.Compute += pr.Compute
		sum.Network += pr.Network
		sum.FutureWait += pr.FutureWait
		sum.LockWait += pr.LockWait
		sum.Idle += pr.Idle
		sum.Hops += pr.Hops
		sum.Steps += pr.Steps
		sum.Incomplete = sum.Incomplete || pr.Incomplete
	}
	fmt.Printf("\ntail requests (p99 and above, %d of them) — aggregated partition:\n", len(tail))
	sum.WritePath(os.Stdout, func(v int64) float64 { return mdl.Seconds(instr.Instr(v)) })
}

// finishObservability renders the post-run observability outputs: the
// attribution report and/or the Perfetto export. The export is read back
// and parsed so an invalid file fails the run instead of failing later in
// the viewer.
func finishObservability(m *obsv.Metrics, mdl *machine.Model, title string, profile bool, traceOut string) {
	if err := m.CheckAttribution(); err != nil {
		fatalf("%v", err)
	}
	if profile {
		fmt.Println()
		m.WriteReport(os.Stdout, "cycle attribution: "+title, func(v int64) float64 {
			return mdl.Seconds(instr.Instr(v))
		})
	}
	if traceOut == "" {
		return
	}
	f, err := os.Create(traceOut)
	if err != nil {
		fatalf("trace-out: %v", err)
	}
	if err := m.WritePerfetto(f); err != nil {
		f.Close()
		fatalf("trace-out: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("trace-out: %v", err)
	}
	data, err := os.ReadFile(traceOut)
	if err != nil {
		fatalf("trace-out: %v", err)
	}
	var probe struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		fatalf("trace-out: wrote invalid JSON: %v", err)
	}
	if len(probe.TraceEvents) == 0 {
		fatalf("trace-out: export contains no events")
	}
	fmt.Printf("trace: %d events -> %s (open in ui.perfetto.dev)\n", len(probe.TraceEvents), traceOut)
}

func report(mdl *machine.Model, seconds, localFrac float64, msgs int64, st core.NodeStats, c instr.Counters) {
	fmt.Printf("machine: %s   time: %.6f s   local fraction: %.3f   messages: %d\n",
		mdl.Name, seconds, localFrac, msgs)
	fmt.Printf("invocations: %d (local %d, remote %d)\n", st.Invokes, st.LocalInvokes, st.RemoteInvokes)
	fmt.Printf("stack calls: %d   heap contexts: %d   fallbacks: %d   suspends: %d   wrapper runs: %d\n",
		st.StackCalls, st.HeapInvokes, st.Fallbacks, st.Suspends, st.WrapperRuns)
	if c.Busy() > 0 {
		fmt.Printf("instruction breakdown:")
		for op := instr.Op(0); op < instr.NumOps; op++ {
			if c[op] != 0 {
				fmt.Printf(" %s=%d", op, c[op])
			}
		}
		fmt.Println()
	}
}

func verdict(ok bool, detail string) {
	if ok {
		fmt.Printf("verify: OK (%s)\n", detail)
		return
	}
	fmt.Printf("verify: FAILED (%s)\n", detail)
	os.Exit(1)
}

func orDefault(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func intSqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	for r*r < n {
		r++
	}
	for r*r > n {
		r--
	}
	return r
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
